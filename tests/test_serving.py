"""Serving workload + trace-derived latency percentiles (S-series core).

Covers the latency-percentile aggregation satellite: exact nearest-rank
percentiles on hand-computed samples, synthetic causal chains, empty and
one-request runs, and byte-identical S1 tables across ``--jobs`` sharding,
engine backends, and cache replay.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.serving import run_serving
from repro.bench.experiments import run_experiment
from repro.bench.parallel import SweepExecutor, use_executor
from repro.bench.harness import use_backend
from repro.machine.presets import make_machine
from repro.metrics.latency import latency_summary, percentile, request_latencies
from repro.util.errors import ConfigurationError
from repro.workloads.arrivals import Poisson, ServiceSpec


# ------------------------------------------------------------- percentile
def test_percentile_nearest_rank_hand_computed():
    values = [15.0, 20.0, 35.0, 40.0, 50.0]
    # ceil(q/100 * 5)-th smallest, 1-indexed.
    assert percentile(values, 5) == 15.0
    assert percentile(values, 30) == 20.0
    assert percentile(values, 40) == 20.0
    assert percentile(values, 50) == 35.0
    assert percentile(values, 95) == 50.0
    assert percentile(values, 100) == 50.0
    assert percentile(values, 0) == 15.0


def test_percentile_unsorted_input_and_single_sample():
    assert percentile([9.0, 1.0, 5.0], 50) == 5.0
    assert percentile([42.0], 1) == 42.0
    assert percentile([42.0], 99) == 42.0


def test_percentile_ten_values():
    values = list(range(1, 11))  # 1..10
    assert percentile(values, 50) == 5
    assert percentile(values, 90) == 9
    assert percentile(values, 91) == 10
    assert percentile(values, 99) == 10


def test_percentile_rejects_empty_and_bad_q():
    with pytest.raises(ConfigurationError):
        percentile([], 50)
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101)
    with pytest.raises(ConfigurationError):
        percentile([1.0], -1)


# ------------------------------------------------- synthetic causal chains
def _ev(eid, kind, t, parent=None, name=None, dur=None):
    return {"eid": eid, "kind": kind, "t": t, "pe": 0, "uid": None,
            "parent": parent, "name": name, "dur": dur, "info": None}


def test_single_stage_chain_hand_computed():
    events = [
        _ev(0, "exec_begin", 0.0, name="Main"),
        _ev(1, "send", 1.0, parent=0, name="__init__"),
        _ev(2, "deliver", 1.5, parent=1),
        _ev(3, "exec_begin", 2.0, parent=2, name="Request"),
        _ev(4, "exec_end", 2.75, parent=3, name="Request", dur=0.75),
        _ev(5, "send", 2.75, parent=3, name="done"),
    ]
    recs = request_latencies(events)
    assert len(recs) == 1
    r = recs[0]
    assert r["kind"] == "done"
    assert r["inject_t"] == 1.0
    assert r["complete_t"] == 2.75
    assert r["latency"] == pytest.approx(1.75)
    assert r["queue_wait"] == pytest.approx(0.5)
    assert r["service"] == pytest.approx(0.75)
    assert r["stages"] == 1


def test_chain_crosses_balancer_forwarding_leg():
    # seed forwarded once: send -> deliver -> lb -> send -> deliver -> exec.
    events = [
        _ev(0, "exec_begin", 0.0, name="Main"),
        _ev(1, "send", 1.0, parent=0, name="__init__"),
        _ev(2, "deliver", 1.2, parent=1),
        _ev(3, "lb", 1.2, parent=2, name="forward"),
        _ev(4, "send", 1.2, parent=3, name="__init__"),
        _ev(5, "deliver", 1.6, parent=4),
        _ev(6, "exec_begin", 1.9, parent=5, name="Request"),
        _ev(7, "exec_end", 2.4, parent=6, name="Request", dur=0.5),
        _ev(8, "send", 2.4, parent=6, name="done"),
    ]
    recs = request_latencies(events)
    assert len(recs) == 1
    r = recs[0]
    # Injection is the ORIGINAL send, not the forwarding leg's resend.
    assert r["inject_t"] == 1.0
    assert r["latency"] == pytest.approx(1.4)
    assert r["queue_wait"] == pytest.approx(0.3)  # final-leg wait only


def test_multi_stage_pipeline_accumulates():
    events = [
        _ev(0, "exec_begin", 0.0, name="Main"),
        _ev(1, "send", 1.0, parent=0, name="__init__"),
        _ev(2, "deliver", 1.1, parent=1),
        _ev(3, "exec_begin", 1.3, parent=2, name="Request"),
        _ev(4, "exec_end", 1.8, parent=3, name="Request", dur=0.5),
        _ev(5, "send", 1.8, parent=3, name="__init__"),
        _ev(6, "deliver", 2.0, parent=5),
        _ev(7, "exec_begin", 2.4, parent=6, name="Request"),
        _ev(8, "exec_end", 3.0, parent=7, name="Request", dur=0.6),
        _ev(9, "send", 3.0, parent=7, name="done"),
    ]
    recs = request_latencies(events)
    assert len(recs) == 1
    r = recs[0]
    assert r["stages"] == 2
    assert r["inject_t"] == 1.0
    assert r["complete_t"] == 3.0
    assert r["latency"] == pytest.approx(2.0)
    assert r["queue_wait"] == pytest.approx((1.3 - 1.1) + (2.4 - 2.0))
    assert r["service"] == pytest.approx(1.1)


def test_shed_requests_classified_and_excluded_from_percentiles():
    events = [
        _ev(0, "exec_begin", 0.0, name="Main"),
        _ev(1, "send", 1.0, parent=0, name="__init__"),
        _ev(2, "deliver", 1.1, parent=1),
        _ev(3, "exec_begin", 1.1, parent=2, name="Request"),
        _ev(4, "exec_end", 1.15, parent=3, name="Request", dur=0.05),
        _ev(5, "send", 1.15, parent=3, name="shed"),
        _ev(6, "send", 2.0, parent=0, name="__init__"),
        _ev(7, "deliver", 2.1, parent=6),
        _ev(8, "exec_begin", 2.1, parent=7, name="Request"),
        _ev(9, "exec_end", 3.1, parent=8, name="Request", dur=1.0),
        _ev(10, "send", 3.1, parent=8, name="done"),
    ]
    summary = latency_summary(events)
    assert summary["requests"] == 2
    assert summary["completed"] == 1
    assert summary["shed"] == 1
    # Percentiles cover served requests only — the fast shed must not
    # drag the latency distribution down.
    assert summary["p50"] == pytest.approx(1.1)
    assert summary["p99"] == pytest.approx(1.1)


def test_empty_log_summary_is_visibly_empty():
    summary = latency_summary([])
    assert summary["requests"] == 0
    assert summary["completed"] == 0
    assert summary["p50"] is None
    assert summary["p99"] is None
    assert summary["mean"] is None


# ------------------------------------------------------------- end-to-end
def test_one_request_run_exact_latency():
    # Ideal machine: zero transit/overhead, work unit 1 us.  A single
    # fixed-demand request's latency is exactly its service time.
    ans, res = run_serving(
        make_machine("ideal", 4),
        arrivals=Poisson(rate=1000.0, count=1),
        service=ServiceSpec("fixed", 400.0),
        seed=0,
    )
    assert ans["offered"] == ans["completed"] == 1
    assert ans["shed"] == 0
    assert ans["p50"] == ans["p95"] == ans["p99"] == ans["mean"] == ans["max"]
    # latency = (inject + service) - inject: exact up to one float ulp.
    assert ans["p50"] == pytest.approx(400.0e-6, rel=1e-12)
    assert ans["mean_queue_wait"] == 0.0
    assert ans["mean_service"] == pytest.approx(400.0e-6, rel=1e-12)


def test_empty_stream_run():
    ans, res = run_serving(
        make_machine("ideal", 4),
        arrivals=Poisson(rate=1000.0, count=0),
        seed=0,
    )
    assert ans["offered"] == ans["completed"] == ans["shed"] == 0
    assert ans["p50"] is None and ans["mean"] is None


def test_multi_hop_requests_traverse_stages():
    ans, res = run_serving(
        make_machine("ncube2", 8),
        arrivals=Poisson(rate=1500.0, count=60),
        hops=3,
        seed=4,
    )
    assert ans["completed"] == 60
    kernel = res.kernel
    recs = request_latencies(kernel.events.as_records())
    assert all(r["stages"] == 3 for r in recs)


def test_admission_bound_sheds_under_overload():
    ans, res = run_serving(
        make_machine("ncube2", 4),
        arrivals=Poisson(rate=20000.0, count=200),
        shed_above=3,
        seed=1,
    )
    assert ans["shed"] > 0
    assert ans["completed"] + ans["shed"] == 200
    # Bounded queues bound the tail: served latency stays finite and the
    # analyzer still accounts every request.
    assert ans["p99"] is not None


@pytest.mark.parametrize("balancer", ["random", "roundrobin", "central",
                                      "acwn", "token"])
def test_every_balancer_serves_the_stream(balancer):
    ans, _ = run_serving(
        make_machine("ncube2", 8),
        arrivals=Poisson(rate=3000.0, count=80),
        balancer=balancer,
        seed=2,
    )
    assert ans["completed"] == 80


def test_backends_bit_identical_summary():
    kwargs = dict(arrivals=Poisson(rate=4000.0, count=150),
                  service=ServiceSpec("exp", 400.0), seed=6)
    heap_ans, heap_res = run_serving(make_machine("ncube2", 8), **kwargs)
    batch_ans, batch_res = run_serving(make_machine("ncube2", 8),
                                       backend="batch", **kwargs)
    assert heap_ans == batch_ans
    assert float(heap_res.time).hex() == float(batch_res.time).hex()


# --------------------------------------------------- S1 table byte-identity
def _s1(**executor_kwargs):
    with SweepExecutor(**executor_kwargs) as ex, use_executor(ex):
        return run_experiment("s1", scale="quick")


def _payload(result):
    return (result.text, json.dumps(result.data, sort_keys=True))


def test_s1_jobs4_byte_identical_to_serial():
    serial = _s1(jobs=1)
    parallel = _s1(jobs=4)
    assert _payload(parallel) == _payload(serial)


def test_s1_batch_backend_byte_identical_to_heap():
    heap = _s1(jobs=1)
    with use_backend("batch"):
        batch = _s1(jobs=1)
    assert _payload(batch) == _payload(heap)


def test_s1_cache_replay_byte_identical(tmp_path):
    from repro.bench.cache import ResultCache

    cache = ResultCache(str(tmp_path), fingerprint="pinned-s1")
    with SweepExecutor(jobs=1, cache=cache) as ex, use_executor(ex):
        cold = run_experiment("s1", scale="quick")
    assert cache.stores > 0
    with SweepExecutor(jobs=1, cache=ResultCache(
            str(tmp_path), fingerprint="pinned-s1")) as ex, use_executor(ex):
        warm = run_experiment("s1", scale="quick")
    assert _payload(warm) == _payload(cold)


def test_s1_shows_saturation_knee():
    res = _s1(jobs=1)
    series = res.data["series"]
    by_util = {round(s["util"], 2): s for s in series}
    # Tail latency rises monotonically with utilization...
    p99 = [s["p99"] for s in series]
    assert p99 == sorted(p99)
    # ...and super-linearly past the knee: the step from 90% to 105% load
    # costs more absolute p99 than the whole climb from 40% to 70%.
    knee_growth = by_util[1.05]["p99"] - by_util[0.9]["p99"]
    pre_knee_growth = by_util[0.7]["p99"] - by_util[0.4]["p99"]
    assert knee_growth > pre_knee_growth
