"""Information-sharing abstractions: read-only, write-once, accumulator,
monotonic, distributed table."""

import pytest

from repro import Chare, Kernel, entry, make_machine
from repro.sharing.ops import combine, improves
from repro.util.errors import SharingError


# ------------------------------------------------------------------- operators
def test_combine_named_ops():
    assert combine("sum", 2, 3) == 5
    assert combine("prod", 2, 3) == 6
    assert combine("min", 2, 3) == 2
    assert combine("max", 2, 3) == 3
    assert combine(lambda a, b: a - b, 5, 2) == 3
    with pytest.raises(SharingError):
        combine("avg", 1, 2)


def test_improves_orders():
    assert improves("min", 1, 2)
    assert not improves("min", 2, 2)
    assert improves("max", 3, 2)
    assert improves(lambda n, o: len(n) > len(o), "ab", "a")
    with pytest.raises(SharingError):
        improves("median", 1, 2)


# -------------------------------------------------------------------- readonly
def test_readonly_visible_everywhere():
    class Reader(Chare):
        def __init__(self, main):
            self.send(main, "got", self.readonly("config"), self.my_pe)

    class Main(Chare):
        def __init__(self, n):
            self.set_readonly("config", {"alpha": 7})
            self.n, self.seen = n, []
            for i in range(n):
                self.create(Reader, self.thishandle, pe=i % self.num_pes)

        @entry
        def got(self, cfg, pe):
            assert cfg == {"alpha": 7}
            self.seen.append(pe)
            if len(self.seen) == self.n:
                self.exit(sorted(set(self.seen)))

    result = Kernel(make_machine("ipsc2", 4)).run(Main, 8)
    assert result.result == [0, 1, 2, 3]


def test_readonly_outside_ctor_rejected(ideal4):
    class Main(Chare):
        def __init__(self):
            self.send(self.thishandle, "later")

        @entry
        def later(self):
            self.set_readonly("x", 1)

    with pytest.raises(SharingError):
        Kernel(ideal4).run(Main)


def test_readonly_double_set_rejected(ideal4):
    class Main(Chare):
        def __init__(self):
            self.set_readonly("x", 1)
            self.set_readonly("x", 2)

    with pytest.raises(SharingError):
        Kernel(ideal4).run(Main)


def test_readonly_unknown_name_raises(ideal4):
    class Main(Chare):
        def __init__(self):
            self.readonly("missing")

    with pytest.raises(SharingError):
        Kernel(ideal4).run(Main)


# ------------------------------------------------------------------ write-once
def test_write_once_replicates(ipsc8):
    class Reader(Chare):
        def __init__(self, main):
            self.main = main

        @entry
        def read(self):
            self.send(self.main, "value", self.get_writeonce("w"))

    class Main(Chare):
        def __init__(self):
            self.reader = self.create(Reader, self.thishandle, pe=7)
            self.send(self.thishandle, "write")

        @entry
        def write(self):
            self.write_once("w", ("payload", 42))
            # Give the broadcast time to replicate before reading remotely.
            self.start_quiescence(self.thishandle, "settled")

        @entry
        def settled(self):
            self.send(self.reader, "read")

        @entry
        def value(self, v):
            self.exit(v)

    assert Kernel(ipsc8).run(Main).result == ("payload", 42)


def test_write_once_twice_rejected(ideal4):
    class Main(Chare):
        def __init__(self):
            self.send(self.thishandle, "go")

        @entry
        def go(self):
            self.write_once("w", 1)
            self.write_once("w", 2)

    with pytest.raises(SharingError):
        Kernel(ideal4).run(Main)


def test_get_writeonce_before_replication_raises(ipsc8):
    class Reader(Chare):
        def __init__(self, main):
            # Runs before any write: must raise locally.
            self.get_writeonce("w")

    class Main(Chare):
        def __init__(self):
            self.create(Reader, self.thishandle, pe=3)

    with pytest.raises(SharingError):
        Kernel(ipsc8).run(Main)


# ----------------------------------------------------------------- accumulator
def test_accumulator_is_fold(ideal4):
    class Worker(Chare):
        def __init__(self, v):
            self.accumulate("acc", v)

    class Main(Chare):
        def __init__(self, values):
            self.new_accumulator("acc", 100, "sum")
            for v in values:
                self.create(Worker, v)
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            self.collect_accumulator("acc", self.thishandle, "got")

        @entry
        def got(self, tag, total):
            self.exit(total)

    values = [1, 2, 3, 4, 5]
    result = Kernel(ideal4).run(Main, values)
    # The declared initial participates exactly once, whatever P is.
    assert result.result == 100 + sum(values)


def test_accumulator_max_semantics(ipsc8):
    class Worker(Chare):
        def __init__(self, v):
            self.accumulate("best", v)

    class Main(Chare):
        def __init__(self):
            self.new_accumulator("best", 0, "max")
            for v in (3, 17, 5, 11):
                self.create(Worker, v)
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            self.collect_accumulator("best", self.thishandle, "got")

        @entry
        def got(self, tag, total):
            self.exit(total)

    assert Kernel(ipsc8).run(Main).result == 17


def test_accumulator_declared_outside_ctor_rejected(ideal4):
    class Main(Chare):
        def __init__(self):
            self.send(self.thishandle, "later")

        @entry
        def later(self):
            self.new_accumulator("late", 0)

    with pytest.raises(SharingError):
        Kernel(ideal4).run(Main)


def test_unknown_accumulator_raises(ideal4):
    class Main(Chare):
        def __init__(self):
            self.accumulate("ghost", 1)

    with pytest.raises(SharingError):
        Kernel(ideal4).run(Main)


def test_double_collect_allowed(ideal4):
    """Collection is non-destructive and repeatable."""

    class Main(Chare):
        def __init__(self):
            self.new_accumulator("acc", 0, "sum")
            self.accumulate("acc", 5)
            self.results = []
            self.collect_accumulator("acc", self.thishandle, "got")

        @entry
        def got(self, tag, total):
            self.results.append(total)
            if len(self.results) == 2:
                self.exit(self.results)
            else:
                self.collect_accumulator("acc", self.thishandle, "got")

    assert Kernel(ideal4).run(Main).result == [5, 5]


# ------------------------------------------------------------------- monotonic
def _mono_main(propagation):
    class Worker(Chare):
        def __init__(self, main, v):
            self.update_monotonic("bound", v)
            self.send(main, "done")

    class Main(Chare):
        def __init__(self, values):
            self.new_monotonic("bound", 10**9, "min", propagation)
            self.pending = len(values)
            for v in values:
                self.create(Worker, self.thishandle, v)

        @entry
        def done(self):
            self.pending -= 1
            if self.pending == 0:
                self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            self.exit(self.read_monotonic("bound"))

    return Main


@pytest.mark.parametrize("propagation", ["eager", "lazy"])
def test_monotonic_converges_to_best(ipsc8, propagation):
    result = Kernel(ipsc8).run(_mono_main(propagation), [44, 12, 90, 33])
    assert result.result == 12


def test_monotonic_off_keeps_local_only(ipsc8):
    # With propagation off, PE0 sees only updates made on PE0; the main
    # chare's read may be stale (but never *better* than the true best).
    result = Kernel(ipsc8).run(_mono_main("off"), [44, 12, 90, 33])
    assert result.result >= 12


def test_monotonic_rejects_worse_updates(ideal4):
    class Main(Chare):
        def __init__(self):
            self.new_monotonic("m", 50, "min")
            self.update_monotonic("m", 60)   # worse: ignored
            self.update_monotonic("m", 40)   # better: applied
            self.update_monotonic("m", 45)   # worse again
            self.exit(self.read_monotonic("m"))

    assert Kernel(ideal4).run(Main).result == 40


def test_monotonic_invalid_propagation(ideal4):
    class Main(Chare):
        def __init__(self):
            self.new_monotonic("m", 0, "max", propagation="psychic")

    with pytest.raises(SharingError):
        Kernel(ideal4).run(Main)


# ----------------------------------------------------------------------- table
def test_table_insert_find_delete(ipsc8):
    class Main(Chare):
        def __init__(self):
            self.new_table("t")
            self.phase = 0
            self.table_insert("t", "k1", 111, reply_to=self.thishandle,
                              reply_entry="acked")

        @entry
        def acked(self, key):
            self.table_find("t", "k1", self.thishandle, "found")

        @entry
        def found(self, key, value):
            if self.phase == 0:
                assert value == 111
                self.phase = 1
                self.table_delete("t", "k1")
                self.start_quiescence(self.thishandle, "quiet")
            else:
                self.exit(value)

        @entry
        def quiet(self):
            self.table_find("t", "k1", self.thishandle, "found")

    assert Kernel(ipsc8).run(Main).result is None


def test_table_find_missing_returns_none(ideal4):
    class Main(Chare):
        def __init__(self):
            self.new_table("t")
            self.table_find("t", ("no", "such"), self.thishandle, "found")

        @entry
        def found(self, key, value):
            self.exit((key, value))

    assert Kernel(ideal4).run(Main).result == (("no", "such"), None)


def test_table_unknown_name_raises(ideal4):
    class Main(Chare):
        def __init__(self):
            self.table_insert("ghost", 1, 2, None, "")

    with pytest.raises(SharingError):
        Kernel(ideal4).run(Main)


def test_table_keys_spread_across_shards(ipsc8):
    class Main(Chare):
        def __init__(self, n):
            self.new_table("t")
            self.n = n
            self.acks = 0
            for i in range(n):
                self.table_insert("t", f"key{i}", i, reply_to=self.thishandle,
                                  reply_entry="acked")

        @entry
        def acked(self, key):
            self.acks += 1
            if self.acks == self.n:
                self.exit(True)

    kernel = Kernel(ipsc8)
    assert kernel.run(Main, 64).result is True
    sizes = [len(kernel.sharing.shard("t", pe)) for pe in range(8)]
    assert sum(sizes) == 64
    assert max(sizes) < 64  # more than one shard used
