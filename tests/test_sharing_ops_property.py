"""Property tests for the sharing operators and accumulator algebra."""

from hypothesis import given, strategies as st

from repro.sharing.ops import combine, improves

ints = st.integers(min_value=-10**6, max_value=10**6)
named_ops = st.sampled_from(["sum", "prod", "max", "min"])
small_ints = st.integers(min_value=-50, max_value=50)


@given(named_ops, ints, ints)
def test_named_ops_commutative(op, a, b):
    assert combine(op, a, b) == combine(op, b, a)


@given(named_ops, small_ints, small_ints, small_ints)
def test_named_ops_associative(op, a, b, c):
    assert combine(op, combine(op, a, b), c) == combine(op, a, combine(op, b, c))


@given(st.sampled_from(["min", "max"]), ints, ints)
def test_improves_is_strict(order, a, b):
    # Never both directions, never improves over itself.
    assert not (improves(order, a, b) and improves(order, b, a))
    assert not improves(order, a, a)


@given(st.sampled_from(["min", "max"]), ints, ints, ints)
def test_improves_transitive(order, a, b, c):
    if improves(order, a, b) and improves(order, b, c):
        assert improves(order, a, c)


@given(st.lists(ints, min_size=1, max_size=30), st.integers(0, 7))
def test_accumulator_equals_fold_any_distribution(values, seed):
    """Distributing updates across PEs never changes the collected total."""
    from repro import Chare, Kernel, entry, make_machine

    class Worker(Chare):
        def __init__(self, v):
            self.accumulate("acc", v)

    class Main(Chare):
        def __init__(self, vals):
            self.new_accumulator("acc", 0, "sum")
            for v in vals:
                self.create(Worker, v)
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            self.collect_accumulator("acc", self.thishandle, "got")

        @entry
        def got(self, tag, total):
            self.exit(total)

    kernel = Kernel(make_machine("ideal", 4), seed=seed, balancer="random")
    assert kernel.run(Main, tuple(values)).result == sum(values)


@given(st.lists(ints, min_size=1, max_size=25), st.integers(0, 3))
def test_monotonic_converges_to_global_min(values, seed):
    from repro import Chare, Kernel, entry, make_machine

    class Worker(Chare):
        def __init__(self, v):
            self.update_monotonic("m", v)

    class Main(Chare):
        def __init__(self, vals):
            self.new_monotonic("m", 10**9, "min", "eager")
            for v in vals:
                self.create(Worker, v)
            self.start_quiescence(self.thishandle, "quiet")

        @entry
        def quiet(self):
            self.exit(self.read_monotonic("m"))

    kernel = Kernel(make_machine("ideal", 4), seed=seed)
    assert kernel.run(Main, tuple(values)).result == min(values)
