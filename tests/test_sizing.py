"""Unit tests for the wire-size payload model."""

import numpy as np
from hypothesis import given, strategies as st

from repro.util.sizing import payload_nbytes


def test_scalars():
    assert payload_nbytes(None) == 1
    assert payload_nbytes(True) == 1
    assert payload_nbytes(0) == 8
    assert payload_nbytes(3.14) == 8


def test_big_ints_grow():
    assert payload_nbytes(2**100) > payload_nbytes(7)


def test_strings_and_bytes():
    assert payload_nbytes("") == 4
    assert payload_nbytes("abcd") == 8
    assert payload_nbytes(b"abcd") == 8
    assert payload_nbytes("é") == 4 + 2  # utf-8


def test_numpy_arrays_use_nbytes():
    arr = np.zeros(10, dtype=np.float64)
    assert payload_nbytes(arr) == 4 + 80
    assert payload_nbytes(np.float32(1.0)) == 4


def test_containers_sum_recursively():
    assert payload_nbytes((1, 2)) == 4 + 16
    assert payload_nbytes([1, (2, 3)]) == 4 + 8 + 4 + 16
    assert payload_nbytes({"a": 1}) == 4 + (4 + 1) + 8


def test_wire_size_hook_respected():
    class Thing:
        def __wire_size__(self):
            return 123

    assert payload_nbytes(Thing()) == 123


def test_unknown_objects_flat_cost():
    class Opaque:
        pass

    assert payload_nbytes(Opaque()) == 64


@given(st.lists(st.integers(min_value=-10**6, max_value=10**6), max_size=50))
def test_property_list_size_linear(items):
    assert payload_nbytes(items) == 4 + 8 * len(items)


@given(st.text(max_size=100))
def test_property_text_matches_utf8(s):
    assert payload_nbytes(s) == 4 + len(s.encode("utf-8"))


@given(
    st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
                  st.text(max_size=5)),
        lambda children: st.lists(children, max_size=4) | st.tuples(children, children),
        max_leaves=20,
    )
)
def test_property_total_and_positive(payload):
    assert payload_nbytes(payload) >= 1
