"""Spanning-tree shapes: rank binary tree vs hypercube binomial tree."""

import pytest
from hypothesis import given, strategies as st

from repro import Chare, Kernel, entry, make_machine
from repro.core.tree import BinomialTree, RankTree, make_tree
from repro.util.errors import ConfigurationError


@pytest.mark.parametrize("cls", [RankTree, BinomialTree])
@pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 16, 23, 64])
def test_tree_is_a_tree(cls, n):
    tree = cls(n)
    # Every non-root has exactly one parent; parent/children are inverse.
    seen = {0}
    frontier = [0]
    while frontier:
        r = frontier.pop()
        for c in tree.children(r):
            assert tree.parent(c) == r
            assert c not in seen, "cycle or double-parent"
            assert 0 <= c < n
            seen.add(c)
            frontier.append(c)
    assert seen == set(range(n)), f"{cls.__name__} does not span {n} ranks"
    assert tree.parent(0) is None


def test_binomial_edges_are_one_hop_on_hypercube():
    from repro.machine.topology import HypercubeTopology

    n = 32
    topo = HypercubeTopology(n)
    tree = BinomialTree(n)
    for r in range(1, n):
        assert topo.hops(r, tree.parent(r)) == 1


def test_rank_tree_edges_cost_multiple_hops_on_hypercube():
    from repro.machine.topology import HypercubeTopology

    n = 32
    topo = HypercubeTopology(n)
    tree = RankTree(n)
    costs = [topo.hops(r, tree.parent(r)) for r in range(1, n)]
    assert max(costs) > 1  # the thing the binomial tree fixes


def test_make_tree_auto_picks_by_topology():
    assert make_tree("auto", 8, "hypercube").name == "binomial"
    assert make_tree("auto", 8, "bus").name == "rank"
    assert make_tree("rank", 8, "hypercube").name == "rank"
    with pytest.raises(ConfigurationError):
        make_tree("fractal", 8)


@given(st.integers(min_value=1, max_value=200))
def test_property_binomial_spans_any_n(n):
    tree = BinomialTree(n)
    count = 0
    stack = [0]
    while stack:
        r = stack.pop()
        count += 1
        stack.extend(tree.children(r))
    assert count == n


class _BocCount(Chare):
    pass


def test_kernel_runs_with_each_tree():
    from tests.conftest import run_echo

    for tree_name in ("rank", "binomial", "auto"):
        machine = make_machine("ipsc2", 16)
        result = run_echo(machine, n=16, seed=1, spanning_tree=tree_name)
        assert [i for i, _ in result.result] == list(range(16))


def test_binomial_collectives_cut_network_load():
    """The A1 claim at test scale: on a hypercube the binomial tree's edges
    are all single physical hops, so collective traffic occupies far fewer
    links.  (Completion *time* can tie: both trees have an all-1-hop
    critical chain; the win is hop-weighted load.)"""

    class Main(Chare):
        def __init__(self):
            self.new_accumulator("acc", 0, "sum")
            self.accumulate("acc", 1)
            self.collect_accumulator("acc", self.thishandle, "got")

        @entry
        def got(self, tag, total):
            self.exit(self.now)

    hops = {}
    times = {}
    for tree_name in ("rank", "binomial"):
        machine = make_machine("ipsc2", 64)
        result = Kernel(machine, spanning_tree=tree_name).run(Main)
        hops[tree_name] = result.stats.total_message_hops
        times[tree_name] = result.result
    assert hops["binomial"] < hops["rank"]
    assert times["binomial"] <= times["rank"] + 1e-12
