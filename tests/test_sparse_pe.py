"""Sparse-PE plane: O(active) state, bit-identity, and scale smoke tests.

The sparse-PE work (PR 8) replaces the kernel's eager per-PE list with a
lazily-materialized :class:`~repro.core.pe.PEPlane` and moves every
global structure (quiescence counters, balancer tables, sharing state)
to default-on-touch form.  These tests pin the three claims that make
that refactor safe and worthwhile:

* **equivalence** — a lazy plane is observationally identical to a dense
  one (randomized app x preset x balancer x queueing x faults x tracing
  draws, full fingerprints including event records);
* **bit-identity across backends** — sparse-mode runs match between
  HeapBackend and BatchBackend exactly, like dense runs always have;
* **O(active) scale** — a P=10⁵–10⁶ machine touches only the active
  ranks: resident state, wall time and memory all scale with k, not P.

Plus unit coverage for PEPlane itself, a randomized oracle test pinning
the CentralBalancer's O(log P) heap against the historical O(P) scan,
and a regression test for the metrics sampler's utilization denominator
on sparse traces.
"""

from __future__ import annotations

import tracemalloc
from types import SimpleNamespace

import pytest

from repro.apps.fib import run_fib
from repro.apps.histogram import run_histogram
from repro.apps.nqueens import run_nqueens
from repro.apps.tree import TreeParams, run_tree
from repro.apps.tsp import TspInstance, run_tsp
from repro.core.chare import BranchOfficeChare, Chare, entry
from repro.core.kernel import Kernel
from repro.core.pe import PEPlane, PEState
from repro.faults import FaultConfig
from repro.machine.presets import make_machine
from repro.metrics import sample_metrics
from repro.trace.report import TraceReport
from repro.util.errors import RoutingError
from repro.util.rng import RngStream


# ---------------------------------------------------------------- PEPlane unit
def test_peplane_lazy_materialization():
    plane = PEPlane(1000, "fifo")
    assert len(plane) == 0
    state = plane[37]
    assert isinstance(state, PEState)
    assert state.index == 37
    assert state.gated  # dense-mode default: born gated
    assert len(plane) == 1
    assert plane[37] is state  # second lookup hits the same object
    assert plane.ranks() == [37]
    assert plane.states() == [state]


def test_peplane_get_peeks_without_materializing():
    plane = PEPlane(100, "fifo")
    assert plane.get(5) is None
    assert len(plane) == 0  # peeking must not touch
    plane[5]
    assert plane.get(5) is not None


def test_peplane_out_of_range_raises_indexerror():
    plane = PEPlane(8, "fifo")
    with pytest.raises(IndexError):
        plane[8]
    with pytest.raises(IndexError):
        plane[-1]
    assert len(plane) == 0


def test_peplane_dense_prefill_and_gating():
    dense = PEPlane(16, "fifo", dense=True)
    assert len(dense) == 16
    assert dense.ranks() == list(range(16))
    sparse = PEPlane(16, "fifo", gated=False)
    assert not sparse[3].gated  # sparse kernels birth PEs ungated


# ------------------------------------------------------- dense/lazy equivalence
def _fingerprint(answer, result) -> dict:
    """Everything observable: result, times, events, per-PE counters."""
    k = result.kernel
    return {
        "result": repr(answer),
        "time": float(result.time).hex(),
        "events": result.events,
        "truncated": result.truncated,
        "counted_sent": tuple(k.counted_sent),
        "counted_processed": tuple(k.counted_processed),
        "total_message_hops": k.total_message_hops,
        "pes": tuple(
            (
                float(pe.busy_time).hex(),
                pe.msgs_executed,
                pe.seeds_executed,
                pe.system_executed,
                pe.msgs_sent,
                pe.bytes_sent,
                pe.seeds_created,
                pe.max_queued,
            )
            for pe in (k.pes[i] for i in range(k.num_pes))
        ),
        "trace": (None if k.events is None
                  else tuple(map(repr, k.events.as_records()))),
    }


_RUNNERS = {
    "fib": lambda machine, common: run_fib(
        machine, n=12, threshold=5, **common
    ),
    "queens": lambda machine, common: run_nqueens(
        machine, n=6, grainsize=2, **common
    ),
    "tree": lambda machine, common: run_tree(
        machine, TreeParams(seed=5, max_depth=6), **common
    ),
    "histogram": lambda machine, common: run_histogram(
        machine, items=64, workers=5, **common
    ),
}


def _run(app, machine_name, pes, common, **kernel_kwargs):
    machine = make_machine(machine_name, pes)
    answer, result = _RUNNERS[app](machine, dict(common, **kernel_kwargs))
    return _fingerprint(answer, result)


def test_randomized_dense_vs_lazy_equivalence():
    """A lazily-materialized plane must be invisible: random draws over
    app x preset x balancer x queueing x faults x tracing compare a
    ``dense_pes=True`` run (the historical eager memory profile) against
    the default lazy plane, bit for bit."""
    rng = RngStream(1991, "sparse-equiv")
    apps = sorted(_RUNNERS)
    machines = ["symmetry", "multimax", "ipsc2", "ncube2", "cluster",
                "ideal", "hetero"]
    balancers = ["random", "acwn", "token", "central", "roundrobin"]
    queueings = ["fifo", "lifo", "prio", "bitprio"]
    fault_draws = [None, FaultConfig(jitter=3e-6),
                   FaultConfig(drop_prob=0.05, ack_timeout=2e-3)]
    for draw in range(8):
        app = apps[rng.randint(0, len(apps) - 1)]
        machine_name = machines[rng.randint(0, len(machines) - 1)]
        common = dict(
            balancer=balancers[rng.randint(0, len(balancers) - 1)],
            queueing=queueings[rng.randint(0, len(queueings) - 1)],
            seed=rng.randint(0, 10_000),
        )
        kw = {}
        faults = fault_draws[rng.randint(0, len(fault_draws) - 1)]
        if faults is not None:
            kw["faults"] = faults
        if rng.randint(0, 1):
            kw["trace_events"] = "all"
        dense_fp = _run(app, machine_name, 8, common, dense_pes=True, **kw)
        lazy_fp = _run(app, machine_name, 8, common, **kw)
        assert dense_fp == lazy_fp, (
            f"draw {draw}: {app}@{machine_name} {common} {sorted(kw)} diverged"
        )


def test_sparse_mode_backend_bit_identity():
    """Sparse runs must match between heap and batch backends exactly,
    including the sparse quiescence waves and accumulator collects."""
    cases = [
        ("fib", dict(n=14, threshold=6), {}),
        ("tree", dict(params=TreeParams(seed=7, max_depth=7)), {}),
        ("queens", dict(n=6, grainsize=2), dict(balancer="central")),
    ]
    for app, app_kw, over in cases:
        fps = {}
        for backend in ("heap", "batch"):
            machine = make_machine("cluster", 10_000, backend=backend,
                                   sparse=True)
            common = {"balancer": "random", "queueing": "fifo", "seed": 3,
                      **over}
            if app == "fib":
                ans, res = run_fib(machine, app_kw["n"],
                                   threshold=app_kw["threshold"], **common)
            elif app == "tree":
                ans, res = run_tree(machine, app_kw["params"], **common)
            else:
                ans, res = run_nqueens(machine, n=app_kw["n"],
                                       grainsize=app_kw["grainsize"], **common)
            k = res.kernel
            fps[backend] = (
                repr(ans), float(res.time).hex(), res.events,
                tuple(sorted(k.pes)),
                tuple((s.index, s.msgs_executed, s.counted_sent,
                       s.counted_processed) for s in k.pes.states()),
            )
        assert fps["heap"] == fps["batch"], f"{app} sparse diverged"


# ----------------------------------------------------------- O(active) scaling
def test_sparse_p100k_touches_only_active_ranks():
    machine = make_machine("cluster", 100_000, sparse=True)
    ans, res = run_fib(machine, n=14, threshold=6, balancer="random", seed=0)
    k = res.kernel
    assert ans == 377
    touched = len(k.pes)
    assert touched < 1_000, f"sparse fib touched {touched} of 100k PEs"
    # Global structures scale with the touched set, not with P.
    assert len(k.counted_sent) == 100_000  # compat property is still dense
    assert sum(len(row) for row in k.balancer.known.values()) < 10_000
    report = TraceReport.from_kernel(k)
    assert len(report.pe_rows) == touched


def test_sparse_quiescence_and_collect_stay_sparse():
    """QD waves and accumulator gathers enumerate the touched set only —
    the event count must be orders of magnitude below P."""
    machine = make_machine("cluster", 100_000, sparse=True)
    ans, res = run_tree(machine, TreeParams(seed=7, max_depth=7),
                        balancer="random", seed=1)
    k = res.kernel
    assert ans == (56, 31)  # structural answer: QD + collect completed
    assert len(k.pes) < 1_000
    assert res.events < 10_000  # full-P collectives would exceed 100k
    # tsp adds monotonic floods (eager) on top of QD + collects.
    inst = TspInstance.random(7, seed=11)
    machine = make_machine("cluster", 100_000, sparse=True)
    ans, res = run_tsp(machine, inst, grain=4, balancer="random",
                       queueing="prio", seed=4)
    assert len(res.kernel.pes) < 1_000
    assert res.events < 10_000


def test_sparse_p1m_memory_is_o_active():
    """Constructing and running a P=10⁶ kernel must allocate O(k), not
    O(P): the historical eager plane alone was hundreds of MB here."""
    tracemalloc.start()
    try:
        base = tracemalloc.get_traced_memory()[0]
        machine = make_machine("cluster", 1_000_000, sparse=True)
        ans, res = run_fib(machine, n=14, threshold=6, balancer="random",
                           seed=0)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert ans == 377
    k = res.kernel
    assert len(k.pes) < 1_000
    # Generous ceiling: the run allocates a few MB; an eager P=1M plane
    # (~1 KB per PEState with its queues) would blow far past this.
    assert peak - base < 64 * 1024 * 1024, f"peak {peak - base} bytes"
    # Sharing/balancer state is touched-only too.
    share = k.services["share"]
    assert len(share._acc) + len(share._mono) < 4_000
    assert len(k.balancer.known) < 4_000


# ------------------------------------------------------------ sparse BOC spans
def _span_merge(a, b):
    return tuple(sorted(set(a) | set(b)))


class _SpanBoc(BranchOfficeChare):
    """Branch that reports its PE via reduction and joins a barrier."""

    def __init__(self):
        pass

    @entry
    def ping(self, target):
        self.contribute("who", (self.my_pe,), _span_merge, target=target,
                        entry_name="collected")

    @entry
    def sync(self, target):
        self._target = target
        self.barrier("b", "synced")

    @entry
    def synced(self, tag, count):
        self.contribute("cnt", count, "max", target=self._target,
                        entry_name="collected")


class _Toucher(Chare):
    def __init__(self, parent):
        self.send(parent, "touched")


class _SpanMain(Chare):
    """Touch a fixed rank set, then create a BOC and exercise its span:
    broadcast -> reduction -> barrier, each of which must walk only the
    write-once span of ranks active at creation time."""

    def __init__(self, ranks):
        self.pending = len(ranks)
        for pe in ranks:
            self.create(_Toucher, self.thishandle, pe=pe)

    @entry
    def touched(self):
        self.pending -= 1
        if self.pending == 0:
            self.boc = self.create_boc(_SpanBoc)
            self.broadcast_branches(self.boc, "ping", self.thishandle)

    @entry
    def collected(self, tag, value):
        if tag == "who":
            self.who = value
            self.broadcast_branches(self.boc, "sync", self.thishandle)
        else:
            self.exit((self.who, value))


def test_sparse_boc_span_is_o_active():
    """At P=10⁵, BOC create/broadcast/reduce/barrier must touch only the
    ranks active at creation (the write-once span), not all P."""
    P = 100_000
    ranks = sorted(i * 4099 for i in range(1, 25))  # 24 distinct ranks, no 0
    machine = make_machine("cluster", P, sparse=True)
    res = Kernel(machine).run(_SpanMain, ranks)
    k = res.kernel
    span_ranks = sorted([0] + ranks)  # PE 0 (main) is touched too
    who, barrier_count = res.result
    # The reduction visited exactly the span's branches...
    assert list(who) == span_ranks
    # ...the barrier released with the span's branch count...
    assert barrier_count == len(span_ranks)
    # ...branches were constructed on exactly the span ranks...
    boc_id = next(iter(k.boc_spans))
    srs, rank_set, _wtree = k.boc_spans[boc_id]
    assert srs == span_ranks and rank_set == frozenset(span_ranks)
    assert sorted(k.bocs[boc_id]) == span_ranks
    # ...and nothing was O(P): event and touched-rank counts stay ~k.
    assert len(k.pes) < 200, f"touched {len(k.pes)} of {P} PEs"
    assert res.events < 5_000, f"{res.events} events for a 25-rank span"


def test_sparse_boc_send_outside_span_raises():
    """A branch send to a rank outside the write-once span must fail
    loudly: no branch will ever be constructed there."""

    class Main(Chare):
        def __init__(self):
            self.boc = self.create_boc(_SpanBoc)
            self.send(self.thishandle, "later")

        @entry
        def later(self):
            # By now boc_create reached PE 0 and snapshotted the span
            # ({0}: nothing else is touched); rank 500 is outside it.
            self.send_branch(self.boc, 500, "ping", self.thishandle)

    machine = make_machine("cluster", 100_000, sparse=True)
    with pytest.raises(RoutingError, match="spans"):
        Kernel(machine).run(Main)


def test_dense_kernels_have_no_boc_spans():
    """Dense mode must keep the span table empty (full-P collectives),
    so golden traces and dense semantics are untouched."""

    class Main(Chare):
        def __init__(self):
            self.boc = self.create_boc(_SpanBoc)
            self.broadcast_branches(self.boc, "ping", self.thishandle)

        @entry
        def collected(self, tag, value):
            self.exit(value)

    res = Kernel(make_machine("ideal", 8)).run(Main)
    assert list(res.result) == list(range(8))
    assert res.kernel.boc_spans == {}


# -------------------------------------------------- CentralBalancer heap oracle
class _ScanOracle:
    """The historical O(P) argmin scan, kept as the behavioral reference."""

    def __init__(self, num_pes):
        self.num_pes = num_pes
        self.known = {}        # subject -> load as seen by the manager
        self.outstanding = {}  # subject -> optimistic in-flight count

    def note_load(self, subject, load):
        self.known[subject] = load
        self.outstanding[subject] = 0

    def place(self, manager_local_load):
        best = 0
        best_est = manager_local_load + self.outstanding.get(0, 0)
        for cand in range(1, self.num_pes):
            est = self.known.get(cand, 0) + self.outstanding.get(cand, 0)
            if est < best_est:
                best, best_est = cand, est
        self.outstanding[best] = self.outstanding.get(best, 0) + 1
        return best


def test_central_heap_matches_bruteforce_scan():
    """Randomized oracle: the O(log P) lazy-heap placement must reproduce
    the historical O(P) scan decision for decision, including the
    lowest-index tie-break."""
    rng = RngStream(7, "central-oracle")
    for trial, P in enumerate([16, 257, 4096]):
        kernel = Kernel(make_machine("ideal", P), balancer="central")
        bal = kernel.balancer
        oracle = _ScanOracle(P)
        env = SimpleNamespace(hops=0)
        for step in range(400):
            if rng.randint(0, 2):  # 2/3 load reports, 1/3 placements
                subject = rng.randint(1, min(P, 64) - 1)
                load = rng.randint(0, 5)
                bal.note_load(0, subject, load)
                oracle.note_load(subject, load)
            else:
                got = bal.on_seed_arrival(0, env)
                got = 0 if got is None else got
                want = oracle.place(bal.local_load(0))
                assert got == want, (
                    f"P={P} step={step}: heap placed {got}, scan {want}"
                )


def test_central_placement_is_sublinear():
    """Sanity on the satellite's point: placements at P=10k must not be
    dramatically slower than at P=100 (the old scan was ~100x)."""
    import time

    def run_placements(P, n=300):
        kernel = Kernel(make_machine("ideal", P), balancer="central")
        bal = kernel.balancer
        env = SimpleNamespace(hops=0)
        rng = RngStream(1, f"place-{P}")
        t0 = time.perf_counter()
        for _ in range(n):
            bal.note_load(0, rng.randint(1, 63), rng.randint(0, 5))
            bal.on_seed_arrival(0, env)
        return time.perf_counter() - t0

    run_placements(100)  # warm up allocator / bytecode caches
    t_small, t_big = run_placements(100), run_placements(10_000)
    # The old O(P) scan made this ratio ~100; allow generous noise.
    assert t_big < t_small * 20, f"P=10k/{t_big:.4f}s vs P=100/{t_small:.4f}s"


# --------------------------------------------------------------- sampler denom
def _exec_record(eid, t, pe, dur):
    return {"eid": eid, "kind": "exec_end", "t": t, "pe": pe, "dur": dur,
            "uid": eid, "parent": None, "info": None}


def test_sampler_num_pes_inferred_vs_explicit():
    """On a sparse machine where only low ranks were touched, inferring
    ``num_pes`` as ``max_pe + 1`` overstates utilization; an explicit
    machine P must scale it down proportionally."""
    # Two PEs (0 and 3) busy the whole [0, 1.0] span on a 100-PE machine.
    records = [
        _exec_record(1, 1.0, 0, 1.0),
        _exec_record(2, 1.0, 3, 1.0),
    ]
    inferred = sample_metrics(records, buckets=1)
    explicit = sample_metrics(records, buckets=1, num_pes=100)
    assert inferred[0]["util"] == pytest.approx(2.0 / 4.0)  # max_pe+1 == 4
    assert explicit[0]["util"] == pytest.approx(2.0 / 100.0)
    assert explicit[0]["util"] < inferred[0]["util"]
    with pytest.raises(ValueError):
        sample_metrics(records, buckets=1, num_pes=0)
