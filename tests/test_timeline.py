"""Timeline tracer tests."""

import pytest

from repro import Chare, Kernel, entry, make_machine
from repro.trace.timeline import Interval, Timeline
from tests.conftest import run_echo


@pytest.fixture
def traced_run(ipsc8):
    return run_echo(ipsc8, n=16, seed=1, timeline=True)


def test_disabled_by_default(ipsc8):
    result = run_echo(ipsc8, n=4)
    assert result.kernel.timeline is None


def test_records_every_execution(traced_run):
    tl = traced_run.kernel.timeline
    stats = traced_run.stats
    total_execs = sum(
        r.msgs_executed + r.seeds_executed + r.system_executed
        for r in stats.pe_rows
    )
    assert len(tl.intervals) == total_execs


def test_intervals_have_labels_and_kinds(traced_run):
    tl = traced_run.kernel.timeline
    kinds = {iv.kind for iv in tl.intervals}
    labels = {iv.label for iv in tl.intervals}
    assert "seed" in kinds and "svc" in kinds and "app" in kinds
    assert "EchoWorker" in labels   # seeds are labeled by chare class
    assert "reply" in labels        # app messages by entry name


def test_intervals_nonoverlapping_per_pe(traced_run):
    tl = traced_run.kernel.timeline
    for pe in range(8):
        ivs = sorted(tl.for_pe(pe), key=lambda iv: iv.start)
        for a, b in zip(ivs, ivs[1:]):
            assert b.start >= a.end - 1e-12, f"overlap on PE {pe}"


def test_busy_time_matches_counters(traced_run):
    tl = traced_run.kernel.timeline
    for row in traced_run.stats.pe_rows:
        recorded = sum(iv.duration for iv in tl.for_pe(row.pe))
        assert recorded == pytest.approx(row.busy_time)


def test_span_and_gaps(traced_run):
    tl = traced_run.kernel.timeline
    lo, hi = tl.span()
    assert 0.0 <= lo < hi <= traced_run.time + 1e-12
    for pe in range(8):
        for a, b in tl.idle_gaps(pe):
            assert b > a
        assert tl.largest_idle_gap(pe) >= 0.0


def test_utilization_profile_bounds(traced_run):
    profile = traced_run.kernel.timeline.utilization_profile(buckets=10)
    assert len(profile) == 10
    assert all(0.0 <= u <= 1.0 for u in profile)
    assert any(u > 0 for u in profile)


def test_by_label_accounts_all_time(traced_run):
    tl = traced_run.kernel.timeline
    assert sum(tl.by_label().values()) == pytest.approx(
        sum(iv.duration for iv in tl.intervals)
    )


def test_render_ascii(traced_run):
    text = traced_run.kernel.timeline.render(width=40)
    lines = text.splitlines()
    assert lines[0].startswith("timeline")
    assert len(lines) == 1 + 8
    assert all("|" in line for line in lines[1:])
    assert "#" in text


def test_empty_timeline():
    tl = Timeline()
    assert tl.span() == (0.0, 0.0)
    assert tl.render() == "(empty timeline)"
    assert tl.utilization_profile(5) == [0.0] * 5


def test_interval_end_property():
    iv = Interval(0, 1.0, 0.5, "app", "x")
    assert iv.end == 1.5


def test_zero_span_single_event_render():
    """Regression: a non-empty timeline whose only execution has zero
    duration (span hi == lo) rendered as "(empty timeline)", hiding a
    recorded run.  It must render an instantaneous mark instead."""
    tl = Timeline()
    tl._intervals.append(Interval(0, 2.5e-3, 0.0, "app", "tick"))
    text = tl.render(width=40)
    assert text != "(empty timeline)"
    lines = text.splitlines()
    assert "zero span" in lines[0]
    assert "1 instantaneous executions" in lines[0]
    pe0 = next(line for line in lines if line.startswith("PE  0"))
    assert "#" in pe0


def test_zero_span_multi_pe_render_marks_each_pe():
    tl = Timeline()
    tl._intervals.append(Interval(0, 1.0, 0.0, "svc", "probe"))
    tl._intervals.append(Interval(2, 1.0, 0.0, "app", "work"))
    lines = tl.render().splitlines()
    assert len(lines) == 1 + 3  # header + PE0..PE2
    marks = {line[:5].strip(): line.split("|")[1] for line in lines[1:]}
    assert marks["PE  0"] == "+"   # svc-only cell
    assert marks["PE  1"] == "."   # no activity
    assert marks["PE  2"] == "#"   # app execution
    # Analyses still behave on the degenerate span.
    assert tl.utilization_profile(4) == [0.0] * 4
    assert tl.largest_idle_gap(0) == 0.0


def test_interval_ending_exactly_on_span_boundary():
    """An interval closing the span lands in the last bucket, fully counted."""
    tl = Timeline()
    tl._intervals.append(Interval(0, 0.0, 0.5, "app", "a"))
    tl._intervals.append(Interval(0, 0.75, 0.25, "app", "b"))  # ends at hi
    profile = tl.utilization_profile(buckets=4)
    assert profile == pytest.approx([1.0, 1.0, 0.0, 1.0])


def test_zero_duration_interval_at_span_end_not_dropped():
    """Regression: a zero-duration execution sitting exactly at ``hi``
    computed bucket/cell == count and fell off the grid entirely.  The PE
    whose only activity is that execution must still show a mark."""
    tl = Timeline()
    tl._intervals.append(Interval(0, 0.0, 1.0, "app", "work"))   # defines span
    tl._intervals.append(Interval(1, 1.0, 0.0, "svc", "tick"))   # at hi, PE 1
    # Profile: must index the last bucket (adds 0 width), not drop or crash.
    profile = tl.utilization_profile(buckets=5)
    assert len(profile) == 5
    # Render: PE 1's row must carry the mark in the final cell.
    lines = tl.render(width=10).splitlines()
    pe1 = next(line for line in lines if line.startswith("PE  1"))
    body = pe1.split("|")[1]
    assert body[-1] == "+", f"zero-duration boundary mark lost: {pe1!r}"
