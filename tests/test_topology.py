"""Unit tests for interconnect topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.topology import (
    BusTopology,
    FullyConnectedTopology,
    HypercubeTopology,
    Mesh2DTopology,
    RingTopology,
    Torus2DTopology,
    TreeTopology,
    make_topology,
)
from repro.util.errors import TopologyError

ALL = [
    ("bus", {}),
    ("full", {}),
    ("ring", {}),
    ("mesh2d", {}),
    ("torus2d", {}),
    ("hypercube", {}),
    ("tree", {}),
]


def _sizes_for(name):
    return [1, 2, 4, 8, 16] if name == "hypercube" else [1, 2, 5, 8, 12]


@pytest.mark.parametrize("name,kwargs", ALL)
def test_metric_axioms(name, kwargs):
    for n in _sizes_for(name):
        topo = make_topology(name, n, **kwargs)
        for i in range(n):
            assert topo.hops(i, i) == 0
            for j in range(n):
                assert topo.hops(i, j) == topo.hops(j, i)
                assert (topo.hops(i, j) == 0) == (i == j)


@pytest.mark.parametrize("name,kwargs", ALL)
def test_neighbors_are_one_hop_and_symmetric(name, kwargs):
    for n in _sizes_for(name):
        topo = make_topology(name, n, **kwargs)
        for i in range(n):
            for j in topo.neighbors(i):
                assert topo.hops(i, j) == 1
                assert i in topo.neighbors(j)
                assert j != i


def test_bus_everyone_is_neighbor():
    topo = BusTopology(6)
    assert topo.neighbors(2) == [0, 1, 3, 4, 5]
    assert topo.diameter() == 1
    assert FullyConnectedTopology(6).name == "full"


def test_ring_hops_wrap():
    topo = RingTopology(8)
    assert topo.hops(0, 7) == 1
    assert topo.hops(0, 4) == 4
    assert topo.neighbors(0) == [7, 1]
    assert RingTopology(2).neighbors(0) == [1]
    assert RingTopology(1).neighbors(0) == []


def test_mesh_shape_and_hops():
    topo = Mesh2DTopology(12, rows=3, cols=4)
    assert topo.hops(0, 11) == 2 + 3
    assert topo.neighbors(0) == [4, 1]
    assert topo.diameter() == 5
    with pytest.raises(TopologyError):
        Mesh2DTopology(12, rows=5)
    with pytest.raises(TopologyError):
        Mesh2DTopology(12, rows=3, cols=5)


def test_mesh_defaults_near_square():
    topo = Mesh2DTopology(12)
    assert topo.rows * topo.cols == 12
    assert topo.rows <= topo.cols


def test_torus_wraparound_shortens():
    mesh = Mesh2DTopology(16, rows=4, cols=4)
    torus = Torus2DTopology(16, rows=4, cols=4)
    assert mesh.hops(0, 12) == 3
    assert torus.hops(0, 12) == 1
    assert len(torus.neighbors(0)) == 4


def test_hypercube_hops_are_popcount():
    topo = HypercubeTopology(16)
    assert topo.dimension == 4
    assert topo.hops(0b0000, 0b1111) == 4
    assert topo.hops(0b0101, 0b0100) == 1
    assert sorted(topo.neighbors(0)) == [1, 2, 4, 8]
    assert topo.diameter() == 4


def test_hypercube_requires_power_of_two():
    with pytest.raises(TopologyError):
        HypercubeTopology(12)
    HypercubeTopology(1)  # 2^0 is fine


def test_tree_structure():
    topo = TreeTopology(7, arity=2)
    assert topo.parent(0) is None
    assert topo.children(0) == [1, 2]
    assert topo.children(2) == [5, 6]
    assert topo.hops(5, 6) == 2
    assert topo.hops(3, 6) == 4
    assert sorted(topo.neighbors(1)) == [0, 3, 4]
    with pytest.raises(TopologyError):
        TreeTopology(4, arity=1)


def test_out_of_range_pe_raises():
    topo = RingTopology(4)
    with pytest.raises(TopologyError):
        topo.hops(0, 4)
    with pytest.raises(TopologyError):
        topo.neighbors(-1)


def test_make_topology_unknown_name():
    with pytest.raises(TopologyError):
        make_topology("donut", 4)


def test_zero_pes_rejected():
    with pytest.raises(TopologyError):
        BusTopology(0)


@given(st.integers(min_value=1, max_value=6), st.data())
def test_property_hypercube_triangle_inequality(dim, data):
    n = 2**dim
    topo = HypercubeTopology(n)
    i = data.draw(st.integers(min_value=0, max_value=n - 1))
    j = data.draw(st.integers(min_value=0, max_value=n - 1))
    k = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert topo.hops(i, k) <= topo.hops(i, j) + topo.hops(j, k)


# ------------------------------------------------- closed forms (PR 6)
@pytest.mark.parametrize("name,kwargs", ALL)
def test_closed_form_hops_match_checked_hops(name, kwargs):
    """closed_form_hops (unchecked fast path) must equal Topology.hops."""
    for n in _sizes_for(name):
        topo = make_topology(name, n, **kwargs)
        cf = topo.closed_form_hops()
        if name == "tree":
            assert cf is None  # trees keep the memoized table path
            continue
        assert cf is not None
        for i in range(n):
            for j in range(n):
                assert cf(i, j) == topo.hops(i, j), (name, n, i, j)


@pytest.mark.parametrize("name,kwargs", ALL)
def test_closed_form_diameter_matches_brute_force(name, kwargs):
    """Per-family diameter() must equal the all-pairs max over hops."""
    for n in _sizes_for(name):
        topo = make_topology(name, n, **kwargs)
        brute = max(
            (topo.hops(i, j) for i in range(n) for j in range(n)),
            default=0,
        )
        assert topo.diameter() == brute, (name, n)


@pytest.mark.parametrize("n", list(range(1, 64)) + [100, 121, 341])
@pytest.mark.parametrize("arity", [2, 3, 4])
def test_tree_diameter_closed_form_vs_brute_force(n, arity):
    topo = TreeTopology(n, arity=arity)
    brute = max(
        (topo.hops(i, j) for i in range(n) for j in range(n)),
        default=0,
    )
    assert topo.diameter() == brute, (n, arity)


def test_diameter_is_constant_time_at_100k_pes():
    """No O(P^2) tables: diameter and hops at P=100k finish instantly."""
    big = 100_000
    cases = [
        RingTopology(big),
        Mesh2DTopology(big, rows=250, cols=400),
        Torus2DTopology(big, rows=250, cols=400),
        HypercubeTopology(2**17),
        BusTopology(big),
        TreeTopology(big, arity=2),
    ]
    expected = {
        "ring": big // 2,
        "mesh2d": 249 + 399,
        "torus2d": 125 + 200,
        "hypercube": 17,
        "bus": 1,
    }
    for topo in cases:
        d = topo.diameter()
        if topo.name in expected:
            assert d == expected[topo.name]
        else:  # tree of 100k nodes: 2*depth or 2*depth-1
            assert d in (2 * 16, 2 * 16 - 1)
        cf = topo.closed_form_hops()
        if cf is not None:
            assert cf(0, topo.num_pes - 1) == topo.hops(0, topo.num_pes - 1)


@given(st.integers(min_value=2, max_value=30), st.data())
def test_property_ring_triangle_inequality(n, data):
    topo = RingTopology(n)
    i = data.draw(st.integers(min_value=0, max_value=n - 1))
    j = data.draw(st.integers(min_value=0, max_value=n - 1))
    k = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert topo.hops(i, k) <= topo.hops(i, j) + topo.hops(j, k)


@given(st.integers(min_value=2, max_value=40), st.integers(min_value=2, max_value=4))
def test_property_tree_every_node_reaches_root(n, arity):
    topo = TreeTopology(n, arity=arity)
    for pe in range(n):
        depth = 0
        cur = pe
        while topo.parent(cur) is not None:
            cur = topo.parent(cur)
            depth += 1
            assert depth < n
        assert topo.hops(pe, 0) == depth
