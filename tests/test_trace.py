"""Trace/report invariants: the counters must tell a consistent story."""

from repro import Kernel, make_machine
from repro.trace.report import TraceReport
from tests.conftest import run_echo


def test_report_shape(ipsc8):
    result = run_echo(ipsc8, n=16, seed=1)
    report = result.stats
    assert isinstance(report, TraceReport)
    assert report.num_pes == 8
    assert len(report.pe_rows) == 8
    assert report.machine == "ipsc2"
    assert report.queueing == "fifo"
    assert report.balancer == "random"


def test_utilization_bounded(ipsc8):
    report = run_echo(ipsc8, n=32, seed=1).stats
    for row in report.pe_rows:
        assert 0.0 <= row.utilization <= 1.0 + 1e-9
    assert 0.0 <= report.mean_utilization <= 1.0 + 1e-9


def test_busy_time_not_exceeding_wall(ipsc8):
    result = run_echo(ipsc8, n=32, seed=1)
    for row in result.stats.pe_rows:
        assert row.busy_time <= result.time + 1e-12


def test_counts_consistent(ipsc8):
    result = run_echo(ipsc8, n=20, seed=1)
    report = result.stats
    # 20 worker seeds + 20 replies, executed exactly once each.
    seeds = sum(r.seeds_executed for r in report.pe_rows)
    msgs = sum(r.msgs_executed for r in report.pe_rows)
    assert seeds == 20 + 1  # + main-chare construction
    assert msgs == 20
    # Nothing counted was lost in flight.
    assert report.counted_sent == report.counted_processed


def test_bytes_sent_positive_and_accounted(ipsc8):
    report = run_echo(ipsc8, n=8, seed=1).stats
    assert report.total_bytes_sent > 0
    assert report.total_bytes_sent == sum(r.bytes_sent for r in report.pe_rows)


def test_load_imbalance_of_idle_run_is_finite(ideal4):
    report = run_echo(ideal4, n=4).stats
    assert report.load_imbalance >= 1.0 or report.load_imbalance == 0.0


def test_as_dict_and_summary(ipsc8):
    report = run_echo(ipsc8, n=8, seed=1).stats
    d = report.as_dict()
    for key in ("machine", "num_pes", "total_time", "mean_util", "imbalance"):
        assert key in d
    text = report.summary()
    assert "ipsc2" in text
    assert "utilization" in text


def test_charged_units_match_apps(ideal4):
    result = run_echo(ideal4, n=10)
    # EchoWorker charges 10 units each; runtime services add a little more.
    assert result.stats.total_charged >= 100
    app_units = sum(10 for _ in range(10))
    assert result.stats.total_charged < app_units + 500  # services stay modest
