"""Structured event tracing: log, critical path, Perfetto, metrics, bench."""

import json
from collections import Counter

import pytest

from repro.bench.descriptors import RunDescriptor
from repro.bench.harness import describe, measure_many, use_tracing
from repro.bench.parallel import SweepExecutor, use_executor
from repro.faults import FaultConfig
from repro.machine.presets import make_machine
from repro.metrics import metrics_summary, sample_metrics
from repro.trace import (
    EVENT_KINDS,
    EventLog,
    critical_path,
    normalize_kinds,
    to_perfetto,
    write_perfetto,
)
from repro.util.errors import ConfigurationError
from tests.conftest import run_echo


@pytest.fixture
def traced_run(ipsc8):
    return run_echo(ipsc8, n=16, seed=1, trace_events=True)


@pytest.fixture
def records(traced_run):
    return traced_run.kernel.events.as_records()


# ------------------------------------------------------------------ basics
def test_tracing_off_by_default(ipsc8):
    result = run_echo(ipsc8, n=4)
    assert result.kernel.events is None


def test_tracing_off_is_bit_identical(ipsc8):
    base = run_echo(ipsc8, n=16, seed=1)
    traced = run_echo(make_machine("ipsc2", 8), n=16, seed=1,
                      trace_events=True)
    assert traced.time == base.time
    assert traced.result == base.result
    assert traced.events == base.events


def test_normalize_kinds_spellings():
    assert normalize_kinds(True) == EVENT_KINDS
    assert normalize_kinds("all") == EVENT_KINDS
    assert normalize_kinds("send, deliver") == ("deliver", "send")
    assert normalize_kinds(["qd", "qd", "lb"]) == ("lb", "qd")
    with pytest.raises(ConfigurationError):
        normalize_kinds("sends")


def test_log_structure(traced_run, records):
    log = traced_run.kernel.events
    assert len(log) == len(records)
    counts = log.counts()
    # Every execution produces exactly one begin/end pair.
    assert counts["exec_begin"] == counts["exec_end"]
    stats = traced_run.stats
    total_execs = sum(
        r.msgs_executed + r.seeds_executed + r.system_executed
        for r in stats.pe_rows
    )
    assert counts["exec_begin"] == total_execs
    # Fault-free run: one deliver per send, no fault events.
    assert counts["send"] == counts["deliver"]
    assert counts["fault"] == 0
    # eids are the log indices; parents always point backwards.
    for i, e in enumerate(records):
        assert e["eid"] == i
        if e["parent"] is not None:
            assert 0 <= e["parent"] < i
        assert e["kind"] in EVENT_KINDS
        assert e["t"] >= 0.0


def test_send_deliver_chain_by_uid(records):
    sends = {e["uid"]: e for e in records if e["kind"] == "send"}
    for e in records:
        if e["kind"] == "deliver":
            # Every delivery parents on the send of the same uid.
            assert e["parent"] == sends[e["uid"]]["eid"]


def test_exec_begin_parents_on_delivery(records):
    delivers = {e["uid"]: e for e in records if e["kind"] == "deliver"}
    roots = 0
    for e in records:
        if e["kind"] != "exec_begin":
            continue
        if e["uid"] is None or e["uid"] not in delivers:
            roots += 1  # bootstrap main-chare construction
        else:
            assert e["parent"] == delivers[e["uid"]]["eid"]
    assert roots == 1


def test_idle_gap_events_match_pe_aggregate(traced_run, records):
    by_pe = {}
    for e in records:
        if e["kind"] == "idle_gap":
            assert e["dur"] > 0.0
            by_pe[e["pe"]] = max(by_pe.get(e["pe"], 0.0), e["dur"])
    for row in traced_run.stats.pe_rows:
        assert by_pe.get(row.pe, 0.0) == pytest.approx(row.largest_idle_gap)


# ----------------------------------------------------------- critical path
def test_critical_path_properties(traced_run, records):
    cp = critical_path(records)
    assert cp is not None and not cp.truncated
    # Terminal step is the exit-flagged execution end.
    last = cp.steps[-1]
    assert last.kind == "exec_end"
    term = next(e for e in records if e["eid"] == last.eid)
    assert term["info"] == {"exit": True}
    # The chain reaches the bootstrap (main-chare construction).
    assert cp.steps[0].kind == "exec_begin"
    assert cp.steps[0].name == "EchoMain"
    # Path length can never exceed the run's makespan.
    assert 0.0 < cp.length <= traced_run.time + 1e-12
    assert cp.exec_time + cp.transit_time + cp.wait_time + cp.other_time == (
        pytest.approx(cp.length)
    )
    assert cp.hops == sum(1 for s in cp.steps if s.kind == "deliver")
    # Times along the path never go backwards.
    for a, b in zip(cp.steps, cp.steps[1:]):
        assert b.t >= a.t - 1e-12
    text = cp.summary()
    assert "critical path" in text and "by entry method" in text


def test_critical_path_empty_and_missing():
    assert critical_path([]) is None
    # No exec_end at all -> nothing to anchor on.
    log = EventLog(kinds=("send",))
    assert critical_path(log.as_records()) is None


# ----------------------------------------------------- filtering / bounds
def test_kind_filtering_records_only_selected(ipsc8):
    result = run_echo(ipsc8, n=8, seed=1, trace_events="exec_end,idle_gap")
    log = result.kernel.events
    assert set(e.kind for e in log.events) <= {"exec_end", "idle_gap"}
    assert log.counts()["exec_end"] > 0


def test_filtered_sends_still_telescope_chains(ipsc8):
    # With send/deliver filtered out, exec_begin parents telescope through
    # to the sending execution instead of breaking.
    result = run_echo(ipsc8, n=8, seed=1,
                      trace_events="exec_begin,exec_end")
    recs = result.kernel.events.as_records()
    begins = [e for e in recs if e["kind"] == "exec_begin"]
    eids = {e["eid"] for e in recs}
    parented = [e for e in begins if e["parent"] is not None]
    assert parented, "no causal links survived filtering"
    for e in parented:
        assert e["parent"] in eids
    cp = critical_path(recs)
    assert cp is not None
    assert cp.length <= result.time + 1e-12


def test_bounded_log_drops_and_telescopes(ipsc8):
    result = run_echo(ipsc8, n=16, seed=1,
                      trace_events=EventLog(kinds=True, max_events=50))
    log = result.kernel.events
    assert len(log) == 50
    assert log.dropped > 0
    # Surviving events never point at dropped (never-assigned) eids.
    for e in log.events:
        if e.parent is not None:
            assert e.parent < 50


def test_event_log_rejects_bad_config():
    with pytest.raises(ConfigurationError):
        EventLog(max_events=0)
    with pytest.raises(ConfigurationError):
        EventLog(kinds="bogus")
    with pytest.raises(ConfigurationError):
        EventLog().record("send", 0.0, 0)  # record() is control-plane only


# ----------------------------------------------------------------- faults
@pytest.fixture
def faulty_run():
    machine = make_machine("ipsc2", 8)
    cfg = FaultConfig(drop_prob=0.15, dup_prob=0.1, delay_prob=0.1,
                      stall_prob=0.05)
    return run_echo(machine, n=16, seed=3, trace_events=True, faults=cfg)


def test_faults_exactly_one_deliver_per_uid(faulty_run):
    recs = faulty_run.kernel.events.as_records()
    layer = faulty_run.kernel.faults
    assert layer.retries > 0 and layer.dups_suppressed > 0  # faults fired
    deliveries = Counter(e["uid"] for e in recs if e["kind"] == "deliver")
    assert all(c == 1 for c in deliveries.values())


def test_fault_retries_link_to_original_send(faulty_run):
    recs = faulty_run.kernel.events.as_records()
    sends = {e["uid"]: e["eid"] for e in recs if e["kind"] == "send"}
    retries = [e for e in recs
               if e["kind"] == "fault" and e["name"] == "retry"]
    assert retries
    for e in retries:
        # A retransmission extends the original envelope's chain: its
        # parent is that uid's (single) send event, not a fresh root.
        assert e["parent"] == sends[e["uid"]]
        assert e["info"]["attempt"] >= 1
    # The same holds for suppressed duplicates.
    for e in recs:
        if e["kind"] == "fault" and e["name"] == "dup_suppressed":
            assert e["parent"] == sends[e["uid"]]


def test_faults_critical_path_exactly_once(faulty_run):
    recs = faulty_run.kernel.events.as_records()
    cp = critical_path(recs)
    assert cp is not None
    assert cp.length <= faulty_run.time + 1e-12
    uids = [s.uid for s in cp.steps if s.kind == "deliver"]
    assert len(uids) == len(set(uids))  # each logical message at most once


# --------------------------------------------------------------- perfetto
def _phase_index(doc):
    by_phase = {}
    for e in doc["traceEvents"]:
        by_phase.setdefault(e["ph"], []).append(e)
    return by_phase


def test_perfetto_schema(records, traced_run, tmp_path):
    metrics = sample_metrics(records, num_pes=8, t_end=traced_run.time)
    doc = to_perfetto(records, meta={"app": "echo"}, metrics=metrics)
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["format"] == "repro-perfetto-v1"
    by_phase = _phase_index(doc)
    # Complete slices carry name/pid/tid/ts/dur with ts/dur in (float) us.
    for e in by_phase["X"]:
        for key in ("name", "pid", "tid", "ts", "dur"):
            assert key in e
        assert e["ts"] >= 0.0 and e["dur"] >= 0.0
    # Flow events come in balanced s/f pairs sharing an id.
    starts = {e["id"] for e in by_phase.get("s", ())}
    finishes = {e["id"] for e in by_phase.get("f", ())}
    assert starts and starts == finishes
    for e in by_phase.get("f", ()):
        assert e["bp"] == "e"
    # Metadata names every PE process.
    names = {e["args"]["name"] for e in by_phase["M"]
             if e["name"] == "process_name"}
    assert names == {f"PE {i}" for i in range(8)}
    # Counters exist and parse.
    assert any(e["name"] == "messages in flight"
               for e in by_phase.get("C", ()))
    # The file round-trips as JSON.
    out = tmp_path / "trace.perfetto.json"
    n = write_perfetto(str(out), records, meta={"app": "echo"},
                       metrics=metrics)
    loaded = json.loads(out.read_text())
    assert len(loaded["traceEvents"]) == n


def test_perfetto_empty_records():
    doc = to_perfetto([])
    assert doc["traceEvents"] == []


# ---------------------------------------------------------------- metrics
def test_sample_metrics_sanity(records, traced_run):
    rows = sample_metrics(records, buckets=20, num_pes=8,
                          t_end=traced_run.time)
    assert len(rows) == 20
    sent = sum(e["kind"] == "send" for e in records)
    execd = sum(e["kind"] == "exec_end" for e in records)
    assert sum(r["msgs_sent"] for r in rows) == sent
    assert sum(r["msgs_executed"] for r in rows) == execd
    for r in rows:
        assert 0.0 <= r["util"] <= 1.0
        assert r["t1"] > r["t0"]
        assert r["in_flight_max"] >= 0
        assert r["bytes_on_wire_max"] >= 0
        assert r["pool_max"] >= 0
    assert any(r["util"] > 0 for r in rows)
    assert any(r["in_flight_max"] > 0 for r in rows)


def test_sample_metrics_empty():
    assert sample_metrics([]) == []


def _rec(eid, kind, t, pe=0, uid=None, parent=None, dur=None, info=None):
    return {"eid": eid, "kind": kind, "t": t, "pe": pe, "uid": uid,
            "parent": parent, "name": None, "dur": dur, "info": info}


def test_sample_metrics_rejects_bad_num_pes():
    recs = [_rec(0, "send", 0.0)]
    with pytest.raises(ValueError):
        sample_metrics(recs, num_pes=0)
    with pytest.raises(ValueError):
        sample_metrics(recs, num_pes=-4)
    with pytest.raises(ValueError):
        sample_metrics(recs, buckets=0)


def test_sample_metrics_event_at_exact_span_end():
    """An event stamped exactly at t_end must land in the LAST bucket,
    not fall off the end (the half-open [t0, t1) rule has a closed last
    bucket)."""
    recs = [_rec(0, "send", 0.5), _rec(1, "send", 1.0)]
    rows = sample_metrics(recs, buckets=4, num_pes=1, t_end=1.0)
    assert sum(r["msgs_sent"] for r in rows) == 2
    assert rows[-1]["msgs_sent"] == 1
    assert rows[2]["msgs_sent"] == 1  # 0.5 -> bucket [0.5, 0.75)


def test_sample_metrics_single_event_run():
    recs = [_rec(0, "exec_end", 2e-3, dur=2e-3)]
    rows = sample_metrics(recs, buckets=2, num_pes=1)
    assert len(rows) == 2
    assert sum(r["msgs_executed"] for r in rows) == 1
    # The 2 ms execution spans both 1 ms buckets completely.
    assert rows[0]["util"] == pytest.approx(1.0)
    assert rows[1]["util"] == pytest.approx(1.0)


def test_sample_metrics_zero_span_run():
    """All events at t == 0 (and t_end == 0): span degenerates but rows
    still come out, with every event in the catch-all first second."""
    recs = [_rec(0, "send", 0.0), _rec(1, "exec_end", 0.0, dur=0.0)]
    rows = sample_metrics(recs, buckets=3, num_pes=2)
    assert len(rows) == 3
    assert sum(r["msgs_sent"] for r in rows) == 1
    assert sum(r["msgs_executed"] for r in rows) == 1
    assert all(r["t1"] > r["t0"] for r in rows)
    assert all(r["util"] == 0.0 for r in rows)


def test_metrics_summary_edge_inputs():
    assert metrics_summary([]) == "metrics: (no samples)"
    rows = sample_metrics([_rec(0, "exec_end", 1e-3, dur=1e-3)],
                          buckets=1, num_pes=1)
    line = metrics_summary(rows)
    assert "1 buckets" in line and "mean util 100.0%" in line


# ------------------------------------------------------------- bench path
def test_descriptor_key_includes_trace():
    plain = describe("queens", "ipsc2", 4, n=6, grainsize=2)
    traced = describe("queens", "ipsc2", 4, n=6, grainsize=2, trace="all")
    subset = describe("queens", "ipsc2", 4, n=6, grainsize=2,
                      trace="send,deliver")
    assert plain.trace == ()
    assert traced.trace == EVENT_KINDS
    assert len({plain.key(), traced.key(), subset.key()}) == 3
    # Untraced descriptors keep the historical canonical shape.
    assert plain.canonical() == RunDescriptor(
        app=plain.app, machine=plain.machine, num_pes=plain.num_pes,
        seed=plain.seed, params=plain.params,
    ).canonical()


def test_ambient_use_tracing():
    with use_tracing("qd,lb"):
        desc = describe("queens", "ipsc2", 4, n=6, grainsize=2)
        assert desc.trace == ("lb", "qd")
        # An explicit trace= wins over the ambient setting.
        off = describe("queens", "ipsc2", 4, n=6, grainsize=2, trace=())
        assert off.trace == ()
    after = describe("queens", "ipsc2", 4, n=6, grainsize=2)
    assert after.trace == ()


def test_traced_measure_row_payload(tmp_path):
    desc = describe("queens", "ipsc2", 4, n=6, grainsize=2, seed=1,
                    trace="all")
    out = tmp_path / "traces"
    executor = SweepExecutor(jobs=1, trace_out=str(out))
    with executor, use_executor(executor):
        (row,) = measure_many([desc], label="trace-test")
    trace = row.trace
    assert trace["format"] == "repro-trace-v1"
    assert trace["meta"]["app"] == "queens"
    assert trace["meta"]["num_pes"] == 4
    assert trace["meta"]["total_time"] == row.vtime
    assert trace["dropped"] == 0
    assert all(isinstance(e, dict) for e in trace["events"])
    assert executor.traces_written == 1
    run_files = sorted(p.name for p in out.iterdir())
    assert len(run_files) == 2  # .run.json + .perfetto.json
    doc = json.loads((out / [f for f in run_files
                             if f.endswith(".run.json")][0]).read_text())
    assert doc["events"] == trace["events"]
    assert doc["metrics"]  # sampled at export time
    cp = critical_path(doc["events"])
    assert cp is not None and cp.length <= row.vtime + 1e-12


def test_traced_rows_identical_across_jobs(tmp_path):
    descs = [describe("queens", "ipsc2", 4, n=6, grainsize=2, seed=s,
                      trace="all") for s in (1, 2)]
    with SweepExecutor(jobs=1) as ex1, use_executor(ex1):
        serial = measure_many(descs)
    with SweepExecutor(jobs=2) as ex2, use_executor(ex2):
        pooled = measure_many(descs)
    for a, b in zip(serial, pooled):
        assert a.vtime == b.vtime
        assert a.trace["events"] == b.trace["events"]


def test_untraced_rows_have_no_payload():
    desc = describe("queens", "ipsc2", 4, n=6, grainsize=2)
    with SweepExecutor(jobs=1) as ex, use_executor(ex):
        (row,) = measure_many([desc])
    assert row.trace is None
    assert row.result.kernel.events is None


# -------------------------------------------------------------------- CLI
def test_trace_cli_smoke(tmp_path, capsys, records, traced_run):
    from repro.trace.__main__ import main

    run_path = tmp_path / "echo.run.json"
    run_path.write_text(json.dumps({
        "format": "repro-trace-v1",
        "meta": {"app": "echo", "machine": "ipsc2", "num_pes": 8, "seed": 1,
                 "queueing": "fifo", "balancer": "random",
                 "total_time": traced_run.time, "kinds": list(EVENT_KINDS)},
        "events": records,
        "dropped": 0,
    }))
    perfetto_path = tmp_path / "echo.perfetto.json"
    assert main([str(run_path), "--perfetto", str(perfetto_path)]) == 0
    out = capsys.readouterr().out
    assert "run: app=echo" in out
    assert "critical path:" in out
    assert "metrics:" in out
    assert "perfetto: wrote" in out
    assert json.loads(perfetto_path.read_text())["traceEvents"]


def test_trace_cli_bare_record_list(tmp_path, capsys, records):
    from repro.trace.__main__ import main

    run_path = tmp_path / "bare.json"
    run_path.write_text(json.dumps(records))
    assert main([str(run_path)]) == 0
    assert "critical path:" in capsys.readouterr().out


def test_trace_cli_rejects_non_trace(tmp_path):
    from repro.trace.__main__ import main

    bogus = tmp_path / "x.json"
    bogus.write_text(json.dumps({"nope": 1}))
    with pytest.raises(SystemExit):
        main([str(bogus)])


# ------------------------------------------------------------- aggregates
def test_report_idle_aggregates(traced_run):
    stats = traced_run.stats
    for row in stats.pe_rows:
        assert row.idle_time == pytest.approx(
            max(0.0, stats.total_time - row.busy_time))
        assert 0.0 <= row.largest_idle_gap <= stats.total_time
    assert stats.total_idle_time == pytest.approx(
        sum(r.idle_time for r in stats.pe_rows))
    assert stats.max_idle_gap == max(
        r.largest_idle_gap for r in stats.pe_rows)
    assert stats.pool_high_water == max(r.max_pool for r in stats.pe_rows)
    d = stats.as_dict()
    assert {"idle_time", "max_idle_gap", "pool_high_water"} <= set(d)
    assert "largest idle gap" in stats.summary()
    assert "pool high-water" in stats.summary()


def test_idle_aggregates_present_without_tracing(ipsc8):
    # largest_idle_gap is an always-on counter: no tracing required.
    stats = run_echo(ipsc8, n=16, seed=1).stats
    assert stats.max_idle_gap > 0.0
