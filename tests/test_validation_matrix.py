"""The broad integration sweep: every app on every machine preset.

Small instances, P=4 (P=8 for hypercube-only presets needing 2^k), one
configuration each — the point is breadth: any preset-specific or
app-specific interaction bug in the runtime shows up here.
"""

import numpy as np
import pytest

from repro import make_machine
from repro.apps import (
    MdParams,
    TreeParams,
    fib_seq,
    ida_star_seq,
    knapsack_seq,
    md_seq,
    nqueens_seq,
    primes_seq,
    random_puzzle,
    run_fib,
    run_histogram,
    run_jacobi,
    run_knapsack,
    run_matmul,
    run_md,
    run_nqueens,
    run_primes,
    run_puzzle,
    run_samplesort,
    run_sor,
    run_tree,
    run_tsp,
    jacobi_seq,
    sor_seq,
    tree_seq,
    tsp_seq,
)
from repro.apps.knapsack import KnapsackInstance
from repro.apps.tsp import TspInstance
from repro.machine.presets import MACHINE_PRESETS

PRESETS = sorted(MACHINE_PRESETS)


def _machine(name):
    return make_machine(name, 4)


@pytest.mark.parametrize("preset", PRESETS)
def test_queens_everywhere(preset):
    assert run_nqueens(_machine(preset), n=6, grainsize=2)[0] == nqueens_seq(6)


@pytest.mark.parametrize("preset", PRESETS)
def test_fib_everywhere(preset):
    assert run_fib(_machine(preset), n=13, threshold=6)[0] == fib_seq(13)[0]


@pytest.mark.parametrize("preset", PRESETS)
def test_primes_everywhere(preset):
    assert run_primes(_machine(preset), limit=800, chunks=8)[0] == primes_seq(800)[0]


@pytest.mark.parametrize("preset", PRESETS)
def test_tsp_everywhere(preset):
    inst = TspInstance.random(7, 1)
    assert run_tsp(_machine(preset), inst)[0][0] == tsp_seq(inst)[0]


@pytest.mark.parametrize("preset", PRESETS)
def test_knapsack_everywhere(preset):
    inst = KnapsackInstance.random(14, 1)
    assert run_knapsack(_machine(preset), inst, grain=7)[0][0] == knapsack_seq(inst)[0]


@pytest.mark.parametrize("preset", PRESETS)
def test_jacobi_everywhere(preset):
    (grid, _), _ = run_jacobi(_machine(preset), n=8, blocks=2, iterations=4)
    assert np.array_equal(grid, jacobi_seq(8, 4)[0])


@pytest.mark.parametrize("preset", PRESETS)
def test_sor_everywhere(preset):
    (grid, iters, _), _ = run_sor(_machine(preset), n=8, blocks=2,
                                  tol=1e-2, max_iters=40)
    ref_grid, ref_iters, _ = sor_seq(8, tol=1e-2, max_iters=40)
    assert iters == ref_iters
    assert np.array_equal(grid, ref_grid)


@pytest.mark.parametrize("preset", PRESETS)
def test_matmul_everywhere(preset):
    (a, b, c), _ = run_matmul(_machine(preset), n=16, g=2)
    assert np.allclose(c, a @ b)


@pytest.mark.parametrize("preset", PRESETS)
def test_tree_everywhere(preset):
    params = TreeParams(seed=4, max_depth=8)
    assert run_tree(_machine(preset), params)[0] == tree_seq(params)


@pytest.mark.parametrize("preset", PRESETS)
def test_histogram_everywhere(preset):
    (ins, found, bad), _ = run_histogram(_machine(preset), items=40, workers=4)
    assert (ins, found, bad) == (40, 40, 0)


@pytest.mark.parametrize("preset", PRESETS)
def test_puzzle_everywhere(preset):
    board = random_puzzle(3, 14, seed=6)
    cost, rounds, _ = ida_star_seq(board, 3)
    (pcost, prounds, _), _ = run_puzzle(_machine(preset), board, split=3)
    assert (pcost, prounds) == (cost, rounds)


@pytest.mark.parametrize("preset", PRESETS)
def test_samplesort_everywhere(preset):
    (inp, out), _ = run_samplesort(_machine(preset), n=256, workers=4)
    assert np.array_equal(out, np.sort(inp))


@pytest.mark.parametrize("preset", PRESETS)
def test_md_everywhere(preset):
    params = MdParams(cells=3, n_particles=24, steps=5, seed=2)
    (pos, vel), _ = run_md(_machine(preset), params)
    ref_pos, ref_vel = md_seq(params)
    assert np.array_equal(pos, ref_pos)
    assert np.array_equal(vel, ref_vel)
